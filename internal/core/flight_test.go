package core_test

// Flight-recorder acceptance: a fault-injected vertex-program panic at
// superstep S produces, next to the emergency checkpoint, a JSONL dump of
// the last N supersteps — including step S itself (its compute span is
// emitted before the trap check exactly so the ring contains the failing
// step).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/gen"
	"graphxmt/internal/obs"
	"graphxmt/internal/obs/live"
)

func TestFlightRecorderDumpOnPanic(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var target int64 = -1
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 && v > 100 {
			target = v
			break
		}
	}
	if target < 0 {
		t.Fatal("no suitable panic target")
	}
	const failStep = 2
	plan, err := faultinject.ParsePlan(fmt.Sprintf("panic@%d:%d", failStep, target))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fr := live.NewFlightRecorder(0)
	cfg := core.Config{
		Program:    plan.WrapProgram(bspalg.CCProgram{}),
		Combiner:   core.Min,
		Checkpoint: &ckpt.Policy{Dir: dir},
		Obs:        obs.Tee(obs.NewReport(), fr),
	}
	_, _, err = runRec(g, 3, cfg)
	var pe *core.ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("want ProgramError, got %v", err)
	}
	if pe.CheckpointPath == "" {
		t.Fatal("no emergency checkpoint written")
	}
	if pe.FlightRecorderPath == "" {
		t.Fatal("ProgramError carries no flight-recorder path")
	}
	if filepath.Dir(pe.FlightRecorderPath) != filepath.Dir(pe.CheckpointPath) {
		t.Fatalf("flight dump %q not alongside emergency checkpoint %q",
			pe.FlightRecorderPath, pe.CheckpointPath)
	}

	f, err := os.Open(pe.FlightRecorderPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var (
		header struct {
			Ev    string `json:"ev"`
			Cause string `json:"cause"`
			Steps int    `json:"steps"`
		}
		steps []int
		spans = map[int][]string{}
	)
	for lineno := 0; sc.Scan(); lineno++ {
		if lineno == 0 {
			if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
				t.Fatalf("flight header: %v", err)
			}
			continue
		}
		var rec struct {
			Ev    string `json:"ev"`
			Step  int    `json:"step"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("flight line %d: %v", lineno, err)
		}
		if rec.Ev != "step" {
			t.Fatalf("flight line %d: ev = %q, want step", lineno, rec.Ev)
		}
		steps = append(steps, rec.Step)
		for _, s := range rec.Spans {
			spans[rec.Step] = append(spans[rec.Step], s.Name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if header.Ev != "flight" || !strings.Contains(header.Cause, "panicked") {
		t.Fatalf("flight header = %+v; want ev flight with panic cause", header)
	}
	if header.Steps != len(steps) {
		t.Fatalf("header claims %d steps, dump has %d", header.Steps, len(steps))
	}
	// The ring must contain every completed superstep and the failing one.
	want := map[int]bool{}
	for s := 0; s <= failStep; s++ {
		want[s] = false
	}
	for _, s := range steps {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Fatalf("flight dump missing superstep %d (has %v)", s, steps)
		}
	}
	// The failing superstep's record must carry its compute span — the
	// phase that trapped.
	var hasCompute bool
	for _, name := range spans[failStep] {
		if name == "compute" {
			hasCompute = true
		}
	}
	if !hasCompute {
		t.Fatalf("failing superstep %d has spans %v, want compute", failStep, spans[failStep])
	}
}
