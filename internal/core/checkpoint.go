package core

// Checkpoint/restore wiring for the BSP engine (package ckpt holds the
// file format). A checkpoint is taken at the superstep boundary — after
// superstep S's compute sweep, merges, and delivery have completed — and
// captures everything the next superstep depends on: vertex states, the
// halted set, the messages sent in S (re-delivered on resume), per-step
// counters, aggregators, and the accumulated trace profile. Because the
// engine is deterministic at any worker count, a resumed run replays
// supersteps S+1.. exactly as the uninterrupted run would have, so Result
// and profile are bit-identical (recovery_test.go).
//
// With no checkpoint policy, no Stop channel, and no Resume path, Run's
// hot path pays a single nil-pointer check per superstep.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"

	"graphxmt/internal/ckpt"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/trace"
)

// Option mutates a Config; the bspalg single-run wrappers accept trailing
// Options so callers can enable checkpointing, resume, or interruption
// without new function signatures.
type Option func(*Config)

// WithCheckpoint enables superstep-boundary checkpointing under p.
func WithCheckpoint(p *ckpt.Policy) Option {
	return func(c *Config) { c.Checkpoint = p }
}

// WithResume makes the run restore from the checkpoint at path instead of
// starting at superstep 0.
func WithResume(path string) Option {
	return func(c *Config) { c.Resume = path }
}

// WithStop installs a stop channel: when it is closed the engine finishes
// the current superstep, checkpoints (if a policy is configured), and
// returns *InterruptedError.
func WithStop(ch <-chan struct{}) Option {
	return func(c *Config) { c.Stop = ch }
}

// WithMaxSupersteps bounds the run (see Config.MaxSupersteps).
func WithMaxSupersteps(n int) Option {
	return func(c *Config) { c.MaxSupersteps = n }
}

// ProgramNamer lets a vertex program name itself for checkpoint
// fingerprints. Programs that don't implement it are named by their Go
// type. Wrappers (e.g. the fault-injection harness) forward the inner
// program's name so wrapping never changes the fingerprint.
type ProgramNamer interface {
	ProgramName() string
}

// ProgramNameOf returns the fingerprint name of a vertex program.
func ProgramNameOf(p Program) string {
	if n, ok := p.(ProgramNamer); ok {
		return n.ProgramName()
	}
	return fmt.Sprintf("%T", p)
}

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

func crcInt64s(h hash.Hash32, s []int64) {
	var buf [8192]byte
	i := 0
	for i < len(s) {
		n := 0
		for i < len(s) && n+8 <= len(buf) {
			binary.LittleEndian.PutUint64(buf[n:], uint64(s[i]))
			n += 8
			i++
		}
		h.Write(buf[:n])
	}
}

// graphCRC checksums the graph's identity: vertex count, flags, and the
// CSR arrays (plus weights when present). Computed once per checkpointed
// run; O(E) but pure streaming. On compressed graphs the delta-varint
// bytes are hashed directly — never decoded — so the CRC is O(1) extra
// memory, but it differs from the flat CRC of the same graph: the
// representation is part of the fingerprint (see Fingerprint.Rep).
func graphCRC(g *graph.Graph) uint32 {
	h := crc32.New(ckptCRCTable)
	var hdr [10]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(g.NumVertices()))
	if g.Directed() {
		hdr[8] = 1
	}
	if g.Weighted() {
		hdr[9] = 1
	}
	h.Write(hdr[:])
	crcInt64s(h, g.Offsets())
	if g.Compressed() {
		crcInt64s(h, g.CompressedOffsets())
		h.Write(g.CompressedBlob())
	} else {
		crcInt64s(h, g.Adjacency())
	}
	if g.Weighted() {
		crcInt64s(h, g.Weights())
	}
	return h.Sum32()
}

func costsCRC(c CostSchedule) uint32 {
	h := crc32.New(ckptCRCTable)
	crcInt64s(h, []int64{
		c.ScanLoadsPerVertex,
		c.ActiveIssuePerVertex, c.ActiveLoadsPerVertex, c.ActiveStoresPerVertex,
		c.RecvLoadsPerMsg, c.RecvIssuePerMsg,
		c.SendStoresPerMsg, c.SendLoadsPerMsg, c.SendIssuePerMsg,
		c.DeliverLoadsPerMsg, c.DeliverStoresPerMsg,
		c.HotMsgChunk,
	})
	return h.Sum32()
}

// runFingerprint builds the fingerprint the run's checkpoints carry and
// that Resume validates the loaded checkpoint against.
func runFingerprint(cfg *Config, g *graph.Graph, maxSteps int, maxMsgs int64, costs CostSchedule) ckpt.Fingerprint {
	label := ""
	if cfg.Checkpoint != nil {
		label = cfg.Checkpoint.Label
	}
	return ckpt.Fingerprint{
		GraphCRC:      graphCRC(g),
		Vertices:      g.NumVertices(),
		Edges:         g.NumEdges(),
		Program:       ProgramNameOf(cfg.Program),
		Label:         label,
		Combiner:      cfg.Combiner != nil,
		Sparse:        cfg.SparseActivation,
		Schedule:      cfg.Chunking.String(),
		MaxSupersteps: int64(maxSteps),
		MaxMessages:   maxMsgs,
		CostsCRC:      costsCRC(costs),
		Direction:     cfg.Direction.String(),
		Retries:       int64(max(cfg.MaxRetries, 0)),
		Rep:           string(g.Rep()),
		Lanes:         laneString(laneSourcesOf(cfg.Program)),
	}
}

// ckptRun is the per-run checkpoint state. nil when the run has no policy,
// no stop channel, no resume path, and no supervisor — the engine's only
// hot-path cost.
type ckptRun struct {
	policy *ckpt.Policy
	stop   <-chan struct{}
	fp     ckpt.Fingerprint
	everyN int
	// sup, when non-nil, is the run supervisor (supervise.go): retry makes
	// record run at every boundary even when EveryN (or the absence of a
	// checkpoint directory) gates disk writes, and the run deadline is
	// surfaced from atBoundary so it composes with the stop channel's
	// finish-superstep-then-exit contract.
	sup *supRun
	// snap is the in-memory snapshot of the most recent completed
	// boundary, refreshed at every boundary while a policy is configured
	// (EveryN gates only disk writes) or retry is enabled. It backs the
	// emergency checkpoint written when a vertex program panics
	// mid-superstep and the retry supervisor's rollback.
	snap *ckpt.Snapshot
	// aux is the program's live auxiliary state slice (core.AuxProgram),
	// deep-copied into every boundary snapshot — checkpoint format v7.
	// nil for programs without aux state.
	aux []int64
}

// startCkpt resolves the run's checkpoint state; nil disables everything.
func startCkpt(cfg *Config, g *graph.Graph, maxSteps int, maxMsgs int64, costs CostSchedule, sup *supRun) *ckptRun {
	if cfg.Checkpoint == nil && cfg.Stop == nil && cfg.Resume == "" && !cfg.ResumeLatest && sup == nil {
		return nil
	}
	ck := &ckptRun{policy: cfg.Checkpoint, stop: cfg.Stop, sup: sup, aux: auxOf(cfg.Program)}
	if ck.policy != nil || cfg.Resume != "" || cfg.ResumeLatest {
		ck.fp = runFingerprint(cfg, g, maxSteps, maxMsgs, costs)
	}
	if ck.policy != nil {
		ck.everyN = ck.policy.EveryN
		if ck.everyN <= 0 {
			ck.everyN = 1
		}
	}
	return ck
}

func aggSnapshot(aggs map[string]*aggregator) []ckpt.Aggregate {
	if len(aggs) == 0 {
		return nil
	}
	out := make([]ckpt.Aggregate, 0, len(aggs))
	for name, a := range aggs {
		out = append(out, ckpt.Aggregate{Name: name, Value: a.value, Seeded: a.seeded})
	}
	sortAggs(out)
	return out
}

func prevAggSnapshot(prev map[string]int64) []ckpt.Aggregate {
	if len(prev) == 0 {
		return nil
	}
	out := make([]ckpt.Aggregate, 0, len(prev))
	for name, v := range prev {
		out = append(out, ckpt.Aggregate{Name: name, Value: v, Seeded: true})
	}
	sortAggs(out)
	return out
}

func sortAggs(aggs []ckpt.Aggregate) {
	// Insertion sort: aggregator counts are tiny (programs in this repo
	// register at most one), and it keeps the checkpoint byte-stable.
	for i := 1; i < len(aggs); i++ {
		for j := i; j > 0 && aggs[j].Name < aggs[j-1].Name; j-- {
			aggs[j], aggs[j-1] = aggs[j-1], aggs[j]
		}
	}
}

// record refreshes the in-memory boundary snapshot after superstep step.
// In-flight broadcast records (sent during step, not expanded at delivery)
// are captured alongside the unicast queue — checkpoint format v3 — so a
// resumed run can re-deliver exactly the traffic the original run held.
func (ck *ckptRun) record(step int, live int64, res *Result, halted []bool, sendBuf []Message, bcasts []bcastRec, master *engineState, ds *dirState, rec *trace.Recorder) {
	dest := make([]int64, len(sendBuf))
	val := make([]int64, len(sendBuf))
	for i, m := range sendBuf {
		dest[i] = m.Dest
		val[i] = m.Value
	}
	var bsrc, bval, bseq []int64
	if len(bcasts) > 0 {
		bsrc = make([]int64, len(bcasts))
		bval = make([]int64, len(bcasts))
		bseq = make([]int64, len(bcasts))
		for i, r := range bcasts {
			bsrc[i], bval[i], bseq[i] = r.src, r.val, r.seq
		}
	}
	// Direction layer state — checkpoint format v4: the per-step decision
	// sequence (so resume re-delivers under the recorded decision and the
	// restored Result matches) and the visited bitmap (so post-resume
	// decisions see the same unvisited-edge count the uninterrupted run
	// would have). Both absent when the direction layer is inactive.
	var dirs []int64
	var visited []bool
	if ds != nil {
		dirs = make([]int64, len(res.DirectionPerStep))
		for i, d := range res.DirectionPerStep {
			dirs[i] = int64(d)
		}
		visited = append([]bool(nil), ds.visited...)
	}
	// Per-superstep retry counts — checkpoint format v5: present exactly
	// when the retry supervisor is active, so a resumed run's
	// Result.RetriesPerStep matches an uninterrupted one's.
	var rets []int64
	if ck.sup != nil && ck.sup.maxRetries > 0 {
		rets = append([]int64(nil), ck.sup.retries...)
	}
	// Program-owned auxiliary state — checkpoint format v7: MultiBFS's
	// packed per-lane levels and the like. The compute sweep confines aux
	// writes to the computing vertex's own words, so at a boundary the
	// slice is quiescent and a plain copy captures it exactly.
	var aux []int64
	if len(ck.aux) > 0 {
		aux = append([]int64(nil), ck.aux...)
	}
	ck.snap = &ckpt.Snapshot{
		FP:               ck.fp,
		Step:             int64(step),
		Live:             live,
		Directions:       dirs,
		Visited:          visited,
		States:           append([]int64(nil), master.states...),
		Halted:           append([]bool(nil), halted...),
		MsgDest:          dest,
		MsgVal:           val,
		BcastSrc:         bsrc,
		BcastVal:         bval,
		BcastSeq:         bseq,
		ActivePerStep:    append([]int64(nil), res.ActivePerStep...),
		MessagesPerStep:  append([]int64(nil), res.MessagesPerStep...),
		DeliveredPerStep: append([]int64(nil), res.DeliveredPerStep...),
		RetriesPerStep:   rets,
		Aux:              aux,
		Aggregates:       aggSnapshot(master.aggregates),
		PrevAggregates:   prevAggSnapshot(master.prevAggregates),
		Phases:           rec.StateSnapshot(),
	}
}

// atBoundary runs at the end of every non-terminal superstep: refresh the
// boundary snapshot, write it to disk when the cadence (or an interrupt)
// says so, and surface interruption as *InterruptedError. A checkpoint
// write failure aborts the run; previously written checkpoints are intact
// (writes are temp-file + rename).
func (ck *ckptRun) atBoundary(step int, live int64, res *Result, halted []bool, sendBuf []Message, bcasts []bcastRec, master *engineState, ds *dirState, rec *trace.Recorder) error {
	stopped := false
	if ck.stop != nil {
		select {
		case <-ck.stop:
			stopped = true
		default:
		}
	}
	sup := ck.sup
	// The run deadline surfaces here so it composes with Stop: the
	// superstep in flight finishes, a checkpoint is written (when a policy
	// is configured), and the run exits typed. An interrupt outranks the
	// deadline — it carries the caller's intent.
	timedOut := sup != nil && sup.runExpired()
	p := ck.policy
	if p == nil || p.Dir == "" {
		// No policy, or a label-only policy (a resume without a new
		// checkpoint directory): nothing is ever written, but retry still
		// needs the in-memory boundary snapshot to roll back to.
		if sup != nil && sup.maxRetries > 0 {
			ck.record(step, live, res, halted, sendBuf, bcasts, master, ds, rec)
			sup.lastSnap.Store(ck.snap)
		}
		if stopped {
			return &InterruptedError{Superstep: step}
		}
		if timedOut {
			return &TimeoutError{Superstep: step, Limit: sup.runTimeout}
		}
		return nil
	}
	if p.Hooks != nil && p.Hooks.Kill != nil && p.Hooks.Kill(int64(step)) {
		stopped = true
	}
	ck.record(step, live, res, halted, sendBuf, bcasts, master, ds, rec)
	if sup != nil {
		sup.lastSnap.Store(ck.snap)
	}
	if !stopped && !timedOut && (step+1)%ck.everyN != 0 {
		return nil
	}
	path, err := ckpt.WriteFile(p.Dir, ck.snap, ckpt.FileName(int64(step)), p.Hooks)
	if err != nil {
		return err
	}
	if err := ckpt.Prune(p.Dir, p.Keep); err != nil {
		return err
	}
	if stopped {
		return &InterruptedError{Superstep: step, CheckpointPath: path}
	}
	if timedOut {
		return &TimeoutError{Superstep: step, Limit: sup.runTimeout, CheckpointPath: path}
	}
	return nil
}

// emergency writes the last completed boundary's snapshot as an emergency
// checkpoint (best effort — a vertex-program panic is already being
// reported; a failing emergency write leaves CheckpointPath empty rather
// than masking the ProgramError).
func (ck *ckptRun) emergency() string {
	if ck == nil || ck.policy == nil || ck.policy.Dir == "" || ck.snap == nil {
		return ""
	}
	if ck.snap.Step < 0 {
		// The retry supervisor's post-init snapshot (Step = -1) is
		// in-memory only: no boundary has completed, so there is nothing
		// worth persisting (and nothing a resume could consume).
		return ""
	}
	path, err := ckpt.WriteFile(ck.policy.Dir, ck.snap, ckpt.EmergencyFileName(ck.snap.Step), ck.policy.Hooks)
	if err != nil {
		return ""
	}
	return path
}

// loadResume loads and fingerprint-checks the checkpoint at cfg.Resume.
func (ck *ckptRun) loadResume(path string) (*ckpt.Snapshot, error) {
	s, err := ckpt.Load(path)
	if err != nil {
		return nil, err
	}
	if err := s.FP.Check(ck.fp); err != nil {
		return nil, err
	}
	// The loaded snapshot doubles as the resumed run's first boundary
	// snapshot, so retry can roll back — and an emergency checkpoint can be
	// written — before the first post-resume boundary refreshes it.
	ck.snap = s
	return s, nil
}

// loadLatest resolves Config.ResumeLatest: walk the policy directory's
// checkpoints newest-first and load the first valid one, reporting each
// skipped (corrupt, truncated, or version-incompatible) snapshot through
// the run's obs sink. Returns (nil, nil) when the directory holds no
// checkpoints at all — a fresh start — but fails when every checkpoint
// present is damaged: silently recomputing from scratch is worse than
// making the operator decide.
func (ck *ckptRun) loadLatest(cfg *Config) (*ckpt.Snapshot, error) {
	if ck == nil || ck.policy == nil || ck.policy.Dir == "" {
		return nil, fmt.Errorf("core: ResumeLatest requires a checkpoint policy with a directory")
	}
	noter := obs.FindFallbackNoter(runSink(cfg))
	s, _, err := ckpt.ResumeLatestValid(ck.policy.Dir, ck.fp, func(path string, cause error) {
		if noter != nil {
			noter.NoteFallback(path, cause)
		}
	})
	if err != nil {
		var nv *ckpt.NoValidCheckpointError
		if errors.As(err, &nv) && nv.Skipped == 0 {
			return nil, nil
		}
		return nil, err
	}
	ck.snap = s
	return s, nil
}

// restore applies a loaded snapshot to the run state: vertex states, the
// halted set, counters, aggregators, and the trace profile. The message
// queue and worklist are rebuilt by Run (they live in engine-local
// buffers).
func restore(s *ckpt.Snapshot, res *Result, halted []bool, master *engineState, ds *dirState, rec *trace.Recorder) (live int64) {
	copy(res.States, s.States)
	copy(halted, s.Halted)
	res.Supersteps = int(s.Step) + 1
	res.ActivePerStep = append(res.ActivePerStep[:0], s.ActivePerStep...)
	res.MessagesPerStep = append(res.MessagesPerStep[:0], s.MessagesPerStep...)
	res.DeliveredPerStep = append(res.DeliveredPerStep[:0], s.DeliveredPerStep...)
	if ds != nil {
		res.DirectionPerStep = res.DirectionPerStep[:0]
		for _, d := range s.Directions {
			res.DirectionPerStep = append(res.DirectionPerStep, DirectionMode(d))
		}
		// Rebuild the visited bitmap and its incident-edge sum from the
		// snapshot (v≤3 checkpoints carry neither — the bitmap restarts
		// empty, a documented best-effort for old checkpoints of
		// pull-capable runs).
		ds.visitedEdges = 0
		if len(s.Visited) > 0 {
			copy(ds.visited, s.Visited)
			for v := int64(0); v < int64(len(ds.visited)); v++ {
				if ds.visited[v] {
					ds.visitedEdges += master.graph.Degree(v)
				}
			}
		}
	}
	if len(s.Aggregates) > 0 {
		master.aggregates = make(map[string]*aggregator, len(s.Aggregates))
		for _, a := range s.Aggregates {
			// The reduction function is not serializable; mergeAggregates
			// adopts the one the resumed program registers on first use.
			master.aggregates[a.Name] = &aggregator{value: a.Value, seeded: a.Seeded}
		}
	}
	if len(s.PrevAggregates) > 0 {
		master.prevAggregates = make(map[string]int64, len(s.PrevAggregates))
		for _, a := range s.PrevAggregates {
			master.prevAggregates[a.Name] = a.Value
		}
	}
	rec.RestoreState(s.Phases)
	return s.Live
}
