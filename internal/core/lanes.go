package core

// Capability surfaces for batched multi-source ("MS-BFS style") programs:
// vertex programs whose int64 state is a uint64 lane bitmask (one bit per
// query in the batch) and whose messages are OR-combined bitmasks. The
// engine itself stays lane-agnostic — delivery, combining, direction
// optimization, and checkpointing all operate on opaque int64 payloads —
// but two small interfaces let the optional layers cooperate:
//
//   - LaneProgram exposes the batch's lane assignment, so checkpoints pin
//     it in the fingerprint (resuming a batch under a different source
//     order is a typed MismatchError, not silently scrambled lanes) and
//     the obs layer can report per-superstep lane activity.
//   - AuxProgram exposes program-owned per-run auxiliary state (e.g. the
//     per-vertex per-lane first-set levels MultiBFS recovers distances
//     from), so the checkpoint/retry machinery snapshots, restores, and
//     rolls it back exactly like vertex states — without it, a resumed or
//     retried batch would lose every level recorded before the boundary.
//
// Both follow the engine's nil-gating discipline: a program implementing
// neither costs nothing; the lane fold below runs only for observed runs
// of lane programs.

import (
	"math/bits"
	"strconv"
	"strings"
)

// Or is the bitwise-OR combiner lane-bitmask programs use. OR is
// commutative, associative, and idempotent, so every fold the engine
// performs — chunk merges, hub prefolds, pull-sweep reductions — yields
// the same mask in any order, under either broadcast treatment, at any
// worker count.
func Or(a, b int64) int64 { return a | b }

// LaneProgram is implemented by batched multi-source programs. Lanes
// returns the lane assignment: Lanes()[i] is the source vertex owning bit
// i of the per-vertex lane mask. The slice must be constant for the
// program's lifetime. Wrappers (e.g. the fault-injection harness) forward
// the inner program's lanes so wrapping never changes fingerprints.
type LaneProgram interface {
	Lanes() []int64
}

// AuxProgram is implemented by programs that keep per-run auxiliary state
// outside the engine's per-vertex int64 — state the checkpoint layer must
// persist for resume to be bit-identical. AuxState returns the backing
// slice; the engine deep-copies it into every boundary snapshot, copies a
// resumed snapshot's aux back over it, and restores it on superstep retry.
// Programs must confine writes the same way they confine SetState: only
// words derived from the computing vertex's own ID.
type AuxProgram interface {
	AuxState() []int64
}

// laneSourcesOf returns the program's lane assignment, or nil for
// programs without lanes.
func laneSourcesOf(p Program) []int64 {
	if lp, ok := p.(LaneProgram); ok {
		return lp.Lanes()
	}
	return nil
}

// laneString renders a lane assignment as the comma-separated source list
// pinned into checkpoint fingerprints — byte-identical to the form
// internal/batch's Plan.String prints, so fingerprints and CLI output
// agree. "" for unbatched runs.
func laneString(lanes []int64) string {
	if len(lanes) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, s := range lanes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(s, 10))
	}
	return sb.String()
}

// auxOf returns the program's auxiliary state slice, or nil.
func auxOf(p Program) []int64 {
	if ap, ok := p.(AuxProgram); ok {
		return ap.AuxState()
	}
	return nil
}

// laneCount folds the superstep's outgoing traffic into the set of active
// lanes: the popcount of the OR of every payload. O(records) — broadcast
// records are O(frontier), so this is cheap on the record path and
// O(sent) only under forced expansion. Called only for observed runs of
// lane programs; the mask is a pure function of the logical traffic, so
// the reported count is identical at any worker count and under either
// broadcast treatment.
func laneCount(sendBuf []Message, bcasts []bcastRec) int64 {
	var m uint64
	for i := range bcasts {
		m |= uint64(bcasts[i].val)
	}
	for i := range sendBuf {
		m |= uint64(sendBuf[i].Value)
	}
	return int64(bits.OnesCount64(m))
}
