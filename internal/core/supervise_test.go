package core_test

// The run supervisor, end to end: bounded deterministic retry (a transient
// fault at ANY superstep is absorbed and the run's Result and trace
// profile stay bit-identical to a fault-free run at any worker count),
// retry exhaustion, watchdog deadlines (per-superstep stall and whole-run
// timeout), and engine-level resume through the checkpoint fallback chain.
// See docs/ROBUSTNESS.md.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/obs/live"
)

// transientStep panics on its first `count` Compute calls of one superstep
// — any vertex, so it fires at every superstep that computes at all — then
// passes through. Fingerprint identity and pull capability forward to the
// inner program, like the faultinject wrapper.
type transientStep struct {
	inner     core.Program
	step      int64
	remaining atomic.Int64
}

func newTransientStep(inner core.Program, step int, count int64) *transientStep {
	f := &transientStep{inner: inner, step: int64(step)}
	f.remaining.Store(count)
	return f
}

func (f *transientStep) InitialState(g *graph.Graph, v int64) int64 {
	return f.inner.InitialState(g, v)
}

func (f *transientStep) Compute(v *core.VertexContext) {
	if int64(v.Superstep()) == f.step && f.remaining.Add(-1) >= 0 {
		panic(fmt.Sprintf("supervise_test: transient fault at superstep %d", v.Superstep()))
	}
	f.inner.Compute(v)
}

func (f *transientStep) ProgramName() string { return core.ProgramNameOf(f.inner) }

func (f *transientStep) PullCapable() bool {
	if p, ok := f.inner.(core.PullProgram); ok {
		return p.PullCapable()
	}
	return false
}

// takeRetries detaches Result.RetriesPerStep for separate comparison (the
// rest of the Result is compared with DeepEqual against a fault-free run,
// whose retry counts are all zero by construction).
func takeRetries(t *testing.T, res *core.Result) []int64 {
	t.Helper()
	if len(res.RetriesPerStep) != res.Supersteps {
		t.Fatalf("RetriesPerStep has %d entries for %d supersteps", len(res.RetriesPerStep), res.Supersteps)
	}
	rp := res.RetriesPerStep
	res.RetriesPerStep = nil
	return rp
}

func assertRetries(t *testing.T, rp []int64, step int, want int64) {
	t.Helper()
	for s, r := range rp {
		expect := int64(0)
		if s == step {
			expect = want
		}
		if r != expect {
			t.Fatalf("RetriesPerStep = %v; want %d at step %d and 0 elsewhere", rp, want, step)
		}
	}
}

// TestRetryDeterminismMatrix injects a one-shot transient panic at every
// superstep of three program shapes (pull-capable BFS under adaptive
// direction, CC with combiner, aggregator-carrying triangle counting),
// under both broadcast treatments, at 1, 3, and 8 workers. Every retried
// run must be bit-identical — Result and trace profile — to a fault-free
// supervised run.
func TestRetryDeterminismMatrix(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func() core.Config
	}{
		{"bfs", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}}
		}},
		{"cc/combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
		{"triangles/aggregator", func() core.Config {
			return core.Config{Program: bspalg.TCProgram{}, MaxMessagesPerSuperstep: 1 << 26}
		}},
	}
	for _, tc := range cases {
		for _, expand := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/expand=%v", tc.name, expand), func(t *testing.T) {
				mk := func() core.Config {
					cfg := tc.mk()
					cfg.ExpandBroadcasts = expand
					cfg.MaxRetries = 2
					return cfg
				}
				base, basePh, err := runRec(g, 1, mk())
				if err != nil {
					t.Fatal(err)
				}
				assertRetries(t, takeRetries(t, base), -1, 0)
				for k := 0; k < base.Supersteps; k++ {
					if base.ActivePerStep[k] == 0 {
						continue // no Compute call to fault
					}
					for _, w := range []int{1, 3, 8} {
						cfg := mk()
						cfg.Program = newTransientStep(cfg.Program, k, 1)
						res, ph, err := runRec(g, w, cfg)
						if err != nil {
							t.Fatalf("fault@%d w=%d: %v", k, w, err)
						}
						assertRetries(t, takeRetries(t, res), k, 1)
						if !reflect.DeepEqual(base, res) {
							t.Fatalf("fault@%d w=%d: retried Result differs from fault-free run\n  supersteps %d vs %d\n  active %v vs %v\n  msgs %v vs %v\n  aggregates %v vs %v",
								k, w, base.Supersteps, res.Supersteps,
								base.ActivePerStep, res.ActivePerStep,
								base.MessagesPerStep, res.MessagesPerStep,
								base.Aggregates, res.Aggregates)
						}
						comparePhases(t, basePh, ph)
					}
				}
			})
		}
	}
}

// ccFaultTarget picks a vertex that is guaranteed active in superstep 1 of
// a CC run: any vertex with an edge receives its neighbors' initial labels.
func ccFaultTarget(t *testing.T, g *graph.Graph) int64 {
	t.Helper()
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 && v > 50 {
			return v
		}
	}
	t.Fatal("no suitable fault target")
	return -1
}

// TestRetryCountsAndObservability: a panicn fault that fires twice costs
// exactly two retries, counted in Result.RetriesPerStep, the metrics
// registry, and the report sink's retry column.
func TestRetryCountsAndObservability(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := ccFaultTarget(t, g)
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, MaxRetries: 3}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}
	takeRetries(t, base)

	plan, err := faultinject.ParsePlan(fmt.Sprintf("panicn@1:%d:2", target))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics(nil)
	r := obs.NewReport()
	cfg := mk()
	cfg.Program = plan.WrapProgram(cfg.Program)
	cfg.Obs = obs.Tee(m, r)
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertRetries(t, takeRetries(t, res), 1, 2)
	if !reflect.DeepEqual(base, res) {
		t.Fatal("retried Result differs from fault-free run")
	}
	comparePhases(t, basePh, ph)
	if got := m.Registry().Counter("graphxmt_retries_total", "").Value(); got != 2 {
		t.Fatalf("graphxmt_retries_total = %d, want 2", got)
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "retry") {
		t.Fatalf("report missing retry column:\n%s", buf.String())
	}
}

// TestRetryExhausted: a permanent fault exhausts MaxRetries and surfaces a
// typed RetryExhaustedError wrapping the final ProgramError, with the
// emergency checkpoint and flight-recorder dump locating the last good
// boundary; resuming from that checkpoint with the fault removed completes
// bit-identically.
func TestRetryExhausted(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := ccFaultTarget(t, g)
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}

	plan, err := faultinject.ParsePlan(fmt.Sprintf("panic@1:%d", target))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := mk()
	cfg.MaxRetries = 2
	cfg.Program = plan.WrapProgram(cfg.Program)
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	cfg.Obs = live.NewFlightRecorder(0)
	_, _, err = runRec(g, 3, cfg)
	var re *core.RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("want RetryExhaustedError, got %v", err)
	}
	if re.Superstep != 1 || re.Attempts != 3 {
		t.Fatalf("RetryExhaustedError = superstep %d, attempts %d; want 1, 3", re.Superstep, re.Attempts)
	}
	var pe *core.ProgramError
	if !errors.As(err, &pe) || pe.Vertex != target {
		t.Fatalf("RetryExhaustedError does not unwrap to the ProgramError: %v", err)
	}
	if re.CheckpointPath == "" || !strings.Contains(filepath.Base(re.CheckpointPath), "emergency-") {
		t.Fatalf("emergency checkpoint path = %q", re.CheckpointPath)
	}
	if re.FlightRecorderPath == "" {
		t.Fatal("no flight-recorder dump recorded")
	}

	cfg = mk()
	cfg.MaxRetries = 2
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	cfg.Resume = re.CheckpointPath
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatalf("resume from exhaustion checkpoint: %v", err)
	}
	takeRetries(t, res)
	if !reflect.DeepEqual(base, res) {
		t.Fatal("resumed Result differs from uninterrupted run")
	}
	comparePhases(t, basePh, ph)

	// Without retries configured the same fault is a plain ProgramError even
	// when the supervisor is active for timeouts.
	cfg = mk()
	cfg.StepTimeout = time.Hour
	cfg.Program = plan.WrapProgram(bspalg.CCProgram{})
	_, _, err = runRec(g, 3, cfg)
	if errors.As(err, &re) {
		t.Fatalf("timeouts-only supervisor wrapped the fault in RetryExhaustedError: %v", err)
	}
	if !errors.As(err, &pe) {
		t.Fatalf("want ProgramError, got %v", err)
	}
}

// TestRetryThenKillResume: a superstep retried from the in-memory snapshot,
// then a kill at a later boundary, then resume — the retry count survives
// the checkpoint round trip and the final run is bit-identical at every
// worker count.
func TestRetryThenKillResume(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	target := ccFaultTarget(t, g)
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, MaxRetries: 2}
	}
	base, basePh, err := runRec(g, 1, mk())
	if err != nil {
		t.Fatal(err)
	}
	takeRetries(t, base)

	for _, w := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			dir := t.TempDir()
			plan, err := faultinject.ParsePlan(fmt.Sprintf("panicn@1:%d:1;kill@2", target))
			if err != nil {
				t.Fatal(err)
			}
			cfg := mk()
			cfg.Program = plan.WrapProgram(cfg.Program)
			cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
			_, _, err = runRec(g, w, cfg)
			var ie *core.InterruptedError
			if !errors.As(err, &ie) {
				t.Fatalf("want InterruptedError, got %v", err)
			}
			if ie.Superstep != 2 || ie.CheckpointPath == "" {
				t.Fatalf("InterruptedError = %+v; want superstep 2 with checkpoint", ie)
			}

			cfg = mk()
			cfg.Checkpoint = &ckpt.Policy{Dir: dir}
			cfg.Resume = ie.CheckpointPath
			res, ph, err := runRec(g, w, cfg)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			// The pre-kill retry at superstep 1 rode through the snapshot.
			assertRetries(t, takeRetries(t, res), 1, 1)
			if !reflect.DeepEqual(base, res) {
				t.Fatal("resumed Result differs from fault-free run")
			}
			comparePhases(t, basePh, ph)
		})
	}
}

// TestWatchdogStall: a stalled superstep trips the StepTimeout watchdog,
// which persists an emergency checkpoint and flight dump from the watchdog
// goroutine and surfaces a typed TimeoutError at the next boundary; the
// checkpoint resumes bit-identically.
func TestWatchdogStall(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}

	plan, err := faultinject.ParsePlan("slowstep@1:600")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m := obs.NewMetrics(nil)
	cfg := mk()
	cfg.StepTimeout = 60 * time.Millisecond
	cfg.Program = plan.WrapProgram(cfg.Program)
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	cfg.Obs = obs.Tee(m, live.NewFlightRecorder(0))
	_, _, err = runRec(g, 3, cfg)
	var te *core.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want TimeoutError, got %v", err)
	}
	if !te.Stalled || te.Superstep != 1 || te.Limit != 60*time.Millisecond {
		t.Fatalf("TimeoutError = %+v; want stalled superstep 1", te)
	}
	if te.CheckpointPath == "" || !strings.Contains(filepath.Base(te.CheckpointPath), "emergency-") {
		t.Fatalf("stall emergency checkpoint = %q", te.CheckpointPath)
	}
	if te.FlightRecorderPath == "" {
		t.Fatal("stall produced no flight-recorder dump")
	}
	if got := m.Registry().Counter("graphxmt_watchdog_stalls_total", "").Value(); got != 1 {
		t.Fatalf("graphxmt_watchdog_stalls_total = %d, want 1", got)
	}

	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	cfg.Resume = te.CheckpointPath
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatalf("resume from stall checkpoint: %v", err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("resumed Result differs from unstalled run")
	}
	comparePhases(t, basePh, ph)
}

// TestWatchdogStalledTerminalSuperstep: a stall during the final superstep
// does not cost the finished run its Result — the stall is still observed
// (metrics), but the run returns normally.
func TestWatchdogStalledTerminalSuperstep(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}
	last := base.Supersteps - 1

	plan, err := faultinject.ParsePlan(fmt.Sprintf("slowstep@%d:600", last))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics(nil)
	cfg := mk()
	cfg.StepTimeout = 60 * time.Millisecond
	cfg.Program = plan.WrapProgram(cfg.Program)
	cfg.Obs = m
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatalf("stalled terminal superstep returned %v; want the finished Result", err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("Result differs from unstalled run")
	}
	comparePhases(t, basePh, ph)
	if got := m.Registry().Counter("graphxmt_watchdog_stalls_total", "").Value(); got != 1 {
		t.Fatalf("graphxmt_watchdog_stalls_total = %d, want 1", got)
	}
}

// TestRunTimeout: an expired whole-run deadline ends the run at the next
// boundary like a Stop signal — checkpoint written, typed TimeoutError
// (Stalled=false) — and the checkpoint resumes bit-identically.
func TestRunTimeout(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}

	plan, err := faultinject.ParsePlan("slowstep@1:400")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := mk()
	cfg.RunTimeout = 150 * time.Millisecond
	cfg.Program = plan.WrapProgram(cfg.Program)
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	_, _, err = runRec(g, 3, cfg)
	var te *core.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want TimeoutError, got %v", err)
	}
	if te.Stalled || te.Superstep != 1 || te.CheckpointPath == "" {
		t.Fatalf("TimeoutError = %+v; want run deadline after superstep 1 with checkpoint", te)
	}

	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	cfg.Resume = te.CheckpointPath
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatalf("resume after run timeout: %v", err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("resumed Result differs from undeadlined run")
	}
	comparePhases(t, basePh, ph)

	// Without a checkpoint directory the deadline still ends the run, just
	// without a resume path.
	plan, err = faultinject.ParsePlan("slowstep@1:400")
	if err != nil {
		t.Fatal(err)
	}
	cfg = mk()
	cfg.RunTimeout = 150 * time.Millisecond
	cfg.Program = plan.WrapProgram(cfg.Program)
	_, _, err = runRec(g, 3, cfg)
	if !errors.As(err, &te) || te.CheckpointPath != "" {
		t.Fatalf("deadline without policy: got %v; want TimeoutError with no checkpoint", err)
	}
}

// TestResumeLatestFallback: engine-level auto-resume walks the checkpoint
// chain newest-first past damaged snapshots (torn writes, bit flips),
// counts each skip in the fallback metric, and completes bit-identically.
func TestResumeLatestFallback(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}
	if base.Supersteps < 5 {
		t.Fatalf("test needs >= 5 supersteps, got %d", base.Supersteps)
	}

	// A torn write at boundary 2 leaves a truncated ckpt-2 under the final
	// name, reported as success; the kill at boundary 3 hands back ckpt-3,
	// which we then bit-flip — so auto-resume must skip BOTH newest
	// snapshots and land on ckpt-1.
	dir := t.TempDir()
	plan, err := faultinject.ParsePlan("tornwrite@2;kill@3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
	_, _, err = runRec(g, 3, cfg)
	var ie *core.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	newest := filepath.Join(dir, ckpt.FileName(3))
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipBit(newest, fi.Size()/2, 2); err != nil {
		t.Fatal(err)
	}

	m := obs.NewMetrics(nil)
	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir}
	cfg.ResumeLatest = true
	cfg.Obs = m
	res, ph, err := runRec(g, 3, cfg)
	if err != nil {
		t.Fatalf("auto-resume: %v", err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("auto-resumed Result differs from uninterrupted run")
	}
	comparePhases(t, basePh, ph)
	if got := m.Registry().Counter("graphxmt_ckpt_fallback_total", "").Value(); got != 2 {
		t.Fatalf("graphxmt_ckpt_fallback_total = %d, want 2 skipped snapshots", got)
	}

	// An empty directory is a fresh start, not an error.
	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: t.TempDir()}
	cfg.ResumeLatest = true
	res, ph, err = runRec(g, 3, cfg)
	if err != nil {
		t.Fatalf("auto-resume with no checkpoints: %v", err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("fresh auto-resume run differs")
	}
	comparePhases(t, basePh, ph)

	// A directory holding only damaged snapshots is a hard error. (Fresh
	// directory: the auto-resume run above rewrote dir's chain.)
	dir2 := t.TempDir()
	plan, err = faultinject.ParsePlan("kill@2")
	if err != nil {
		t.Fatal(err)
	}
	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir2, Hooks: plan.Hooks()}
	_, _, err = runRec(g, 3, cfg)
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	for step := int64(0); step <= 2; step++ {
		if err := faultinject.TruncateTail(filepath.Join(dir2, ckpt.FileName(step)), 30); err != nil {
			t.Fatal(err)
		}
	}
	cfg = mk()
	cfg.Checkpoint = &ckpt.Policy{Dir: dir2}
	cfg.ResumeLatest = true
	_, _, err = runRec(g, 3, cfg)
	var nv *ckpt.NoValidCheckpointError
	if !errors.As(err, &nv) || nv.Skipped != 3 {
		t.Fatalf("exhausted chain: got %v; want NoValidCheckpointError with 3 skips", err)
	}

	// ResumeLatest without a checkpoint directory is a usage error.
	cfg = mk()
	cfg.ResumeLatest = true
	if _, _, err := runRec(g, 3, cfg); err == nil {
		t.Fatal("ResumeLatest without a policy directory accepted")
	}
}
