// Package core implements the paper's primary contribution: a bulk
// synchronous parallel (BSP), vertex-centric graph computation engine in
// the style of Google's Pregel, built over the same read-only CSR graph the
// shared-memory GraphCT kernels use — exactly the construction the paper
// evaluates on the Cray XMT.
//
// A computation is a sequence of supersteps. In each superstep every active
// vertex (1) receives the messages sent to it in the previous superstep,
// (2) updates its local state, and (3) sends messages that will be received
// in the next superstep. Messages never arrive within a superstep, which
// makes the model deadlock-free and forces algorithms to work on stale
// state — the algorithmic property behind every performance difference the
// paper measures. A vertex votes to halt when it has nothing further to do
// and is reactivated only by incoming messages; the computation terminates
// when no vertex is active and no messages are in flight.
//
// The engine executes for real (its outputs are checked against the
// GraphCT kernels and sequential references in tests) and records a work
// profile for the machine model, charging the costs of the paper's XMT
// implementation: a full vertex scan per superstep, per-message queue
// writes, and chunked fetch-and-add allocation from a single global buffer
// cursor (trace.HotMsgCounter).
//
// # Host parallelism
//
// Run executes supersteps on all host cores via package par — the compute
// sweep over worker-independent chunks (degree-weighted by default, so a
// skewed graph's hub vertices don't unbalance the sweep; see ChunkSchedule
// in parallel.go) with private per-chunk contexts merged in chunk index
// order, delivery as a stable parallel counting sort, and the
// sparse-activation worklist as a stamp-ordered dense sweep (see
// parallel.go). The package invariant is that the host worker count
// affects only wall-clock time: Result and the recorded trace profile are
// bit-identical whether par runs on 1 or N cores (asserted by the
// determinism tests). For that to hold, Program implementations must
// confine their side effects per vertex: Compute may read shared
// program-owned data but may only write state indexed by its own
// VertexContext.ID (as every program in bspalg does), and InitialState
// must be safe to call concurrently for distinct vertices.
package core

import (
	"fmt"
	"math"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"graphxmt/internal/ckpt"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
	"graphxmt/internal/par"
	"graphxmt/internal/trace"
)

// Message is one in-flight message: a destination vertex and an int64
// payload. The paper's three algorithms all exchange vertex IDs or
// distances, so payloads are plain int64s.
type Message struct {
	Dest  int64
	Value int64
}

// Program is a vertex program. Compute is called once per active vertex
// per superstep with the vertex's incoming messages. Compute runs
// concurrently for distinct vertices on the host (see the package comment
// for the confinement rules that keeps results deterministic).
type Program interface {
	// InitialState returns vertex v's state before superstep 0.
	InitialState(g *graph.Graph, v int64) int64
	// Compute runs one vertex for one superstep.
	Compute(v *VertexContext)
}

// Config configures a BSP run.
type Config struct {
	// Graph is the input graph (required).
	Graph *graph.Graph
	// Program is the vertex program (required).
	Program Program
	// MaxSupersteps bounds the run — the runaway guard for vertex programs
	// that never converge. 0 selects 1000; negative values disable the
	// bound. Exceeding it returns *BudgetError (carrying the last
	// superstep's counters) rather than silently stopping or hanging.
	MaxSupersteps int
	// Combiner, when non-nil, merges messages addressed to the same vertex
	// at the superstep boundary (Pregel's combiner optimization). It must
	// be commutative and associative.
	Combiner func(a, b int64) int64
	// ExpandBroadcasts reverts SendToNeighbors to eager per-edge expansion
	// into the send buffer instead of recording broadcast records expanded
	// at delivery. A host-path A/B knob for tests and benchmarks: both
	// treatments produce the same Result, profile, and logical counters
	// (bit-identical except where deliverBcasts documents reliance on the
	// combiner laws Config.Combiner already requires), so the flag is not
	// part of checkpoint fingerprints and a run may resume under either
	// setting.
	ExpandBroadcasts bool
	// Recorder receives the work profile; nil disables recording.
	Recorder *trace.Recorder
	// Costs is the engine cost schedule; the zero value selects
	// DefaultCosts.
	Costs *CostSchedule
	// MaxMessagesPerSuperstep bounds send-buffer growth; 0 selects 1<<28.
	// Algorithms that exceed it (BSP triangle counting at scale) must use
	// a streaming evaluator instead; the engine returns an error.
	MaxMessagesPerSuperstep int64
	// Obs receives host-runtime observability events: wall-clock spans
	// for each engine phase of each superstep, per-worker busy time,
	// per-superstep counters, and sampled memory statistics (package
	// obs). nil disables observability at zero hot-path cost; in that
	// case Run also accepts a sink attached to Recorder via an
	// obs.SinkProvider observer, so CLIs can wire observability through
	// the recorder they already pass around. Observability never affects
	// Result or the recorded work profile.
	Obs obs.Sink
	// SparseActivation switches the runtime from the paper's full
	// per-superstep vertex scan to an active-worklist schedule: only
	// vertices that received messages or stayed awake are inspected. The
	// computation's results are identical; only the charged (and host)
	// scan work changes. This is the ablation for the paper's observation
	// that "the overhead of the early and late iterations is two orders of
	// magnitude larger" in BSP — with sparse activation that overhead
	// disappears (see experiments.AblationActivation).
	SparseActivation bool
	// Chunking selects how the compute sweep is partitioned into chunks.
	// The zero value (ChunkAuto) selects the degree-weighted schedule.
	// Either schedule is deterministic across worker counts; the choice is
	// recorded in checkpoint fingerprints, so a resumed run must use the
	// schedule it started with.
	Chunking ChunkSchedule
	// Checkpoint, when non-nil, enables superstep-boundary checkpointing
	// under the given policy (package ckpt; see checkpoint.go and
	// docs/ROBUSTNESS.md). nil costs one pointer check per superstep.
	Checkpoint *ckpt.Policy
	// Resume, when non-empty, restores the run from the checkpoint at this
	// path instead of starting at superstep 0. The checkpoint's fingerprint
	// must match this config (same graph, program, label, and engine
	// options) or Run returns *ckpt.MismatchError.
	Resume string
	// Stop, when non-nil, is polled at every superstep boundary: once it
	// is closed, the engine finishes the current superstep, writes a
	// checkpoint (when a policy is configured), and returns
	// *InterruptedError. This is how cmd/bspgraph turns SIGINT/SIGTERM
	// into a resumable exit.
	Stop <-chan struct{}
	// Direction selects push/pull execution for broadcast-heavy supersteps
	// (direction.go). The zero value (DirAuto) enables the adaptive
	// heuristic for pull-capable programs and is the legacy engine for all
	// others; DirPush forces push scatter (the A/B control); DirPull
	// requires a pull-capable program or Run returns *DirectionError. The
	// mode is recorded in checkpoint fingerprints, so a resumed run must
	// use the mode it started with.
	Direction DirectionMode
	// MaxRetries bounds deterministic superstep retry (supervise.go): a
	// vertex-program panic rolls the engine back to the last superstep
	// boundary's in-memory snapshot and re-executes, up to MaxRetries
	// times per superstep, before giving up with *RetryExhaustedError.
	// Because re-execution consumes exactly the boundary state the failed
	// attempt did, a run that survives a transient fault is bit-identical
	// (Result and profile) to a fault-free run at any worker count. 0 or
	// negative disables retry. The bound is recorded in checkpoint
	// fingerprints, so a resumed run must keep the bound it started with.
	MaxRetries int
	// StepTimeout, when positive, arms a watchdog over each superstep: a
	// superstep that outlives the deadline triggers an emergency
	// checkpoint (when a policy with a directory is configured) plus a
	// flight-recorder dump from the watchdog goroutine, and the run
	// returns *TimeoutError (Stalled=true) at the next boundary it
	// reaches. 0 disables the watchdog at zero hot-path cost.
	StepTimeout time.Duration
	// RunTimeout, when positive, bounds the whole run's wall-clock time.
	// The deadline is checked at superstep boundaries — the engine
	// finishes the superstep in flight, writes a checkpoint (when a
	// policy is configured), and returns *TimeoutError (Stalled=false) —
	// so it composes with Stop's finish-superstep-then-exit contract.
	// 0 disables the bound.
	RunTimeout time.Duration
	// ResumeLatest, when true, resumes from the newest *valid* checkpoint
	// in the policy's directory (ckpt.ResumeLatestValid): corrupt,
	// truncated, and version-incompatible snapshots are skipped (each
	// skip reported through the obs sink) and the chain falls back to the
	// next older one. An empty directory starts fresh; a directory with
	// only damaged checkpoints is an error. Requires a Checkpoint policy
	// with a directory. Mutually exclusive with Resume.
	ResumeLatest bool
}

// Result is the outcome of a BSP run.
type Result struct {
	// States holds every vertex's final state.
	States []int64
	// Supersteps is the number of supersteps executed.
	Supersteps int
	// ActivePerStep holds the number of vertices that ran Compute in each
	// superstep.
	ActivePerStep []int64
	// MessagesPerStep holds the number of messages sent in each superstep
	// (before combining).
	MessagesPerStep []int64
	// DeliveredPerStep holds the number of messages delivered into
	// inboxes for each superstep (after combining); index s is what
	// superstep s consumed.
	DeliveredPerStep []int64
	// Aggregates holds the final value of every named aggregator.
	Aggregates map[string]int64
	// DirectionPerStep records each superstep's push/pull decision (one
	// entry per superstep, DirPush or DirPull) when the direction layer is
	// active — the program is pull-capable or a non-auto Direction was
	// requested; nil otherwise. The sequence is a pure function of logical
	// counters, identical at any worker count, and is persisted in
	// checkpoints so resume replays it exactly.
	DirectionPerStep []DirectionMode
	// RetriesPerStep records, when Config.MaxRetries is positive, how many
	// times each superstep was re-executed after a trapped fault (one
	// entry per superstep, normally 0); nil when retry is disabled. The
	// counts are persisted in checkpoints so a resumed run's totals match
	// an uninterrupted one's.
	RetriesPerStep []int64
}

// Run executes the BSP computation to termination.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if cfg.Program == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps == 0 {
		maxSteps = 1000
	} else if maxSteps < 0 {
		maxSteps = math.MaxInt // unbounded
	}
	maxMsgs := cfg.MaxMessagesPerSuperstep
	if maxMsgs == 0 {
		maxMsgs = 1 << 28
	}
	costs := DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}

	g := cfg.Graph
	n := g.NumVertices()
	res := &Result{
		States:     make([]int64, n),
		Aggregates: map[string]int64{},
	}
	// laneSrc/progAux are the program's batching capability surfaces
	// (lanes.go): the lane assignment of a batched multi-source program
	// (obs reporting; the fingerprint pin happens in runFingerprint) and
	// its auxiliary state slice (snapshot/restore/rollback below). Both
	// nil for ordinary programs.
	laneSrc := laneSourcesOf(cfg.Program)
	progAux := auxOf(cfg.Program)
	// sup is the run-supervision state (retry, watchdog, run deadline);
	// nil (no MaxRetries, no timeouts) costs one pointer check per
	// superstep (supervise.go).
	sup := startSup(&cfg)
	// ck is the checkpoint/interrupt state; nil (no policy, no stop
	// channel, no resume, no supervisor) costs one pointer check per
	// superstep boundary.
	ck := startCkpt(&cfg, g, maxSteps, maxMsgs, costs, sup)
	var resumeSnap *ckpt.Snapshot
	switch {
	case cfg.Resume != "":
		s, err := ck.loadResume(cfg.Resume)
		if err != nil {
			return nil, err
		}
		resumeSnap = s
	case cfg.ResumeLatest:
		// Fallback chain: newest valid checkpoint in the policy's
		// directory, or a fresh start when the directory has none (and no
		// damaged ones either).
		s, err := ck.loadLatest(&cfg)
		if err != nil {
			return nil, err
		}
		resumeSnap = s
	}
	if sup != nil && resumeSnap != nil {
		sup.lastSnap.Store(resumeSnap)
		if sup.maxRetries > 0 {
			sup.retries = append(sup.retries, resumeSnap.RetriesPerStep...)
		}
	}
	// ds is the direction-decision state; nil (program not pull-capable,
	// mode auto) is the legacy engine and costs one pointer check per
	// superstep.
	ds, err := startDir(&cfg, g)
	if err != nil {
		return nil, err
	}
	// o is the observability state; nil (no sink) costs one pointer check
	// per hook below. tObs is only written/read when o != nil.
	o := startObs(&cfg, g)
	var tObs time.Time
	if o != nil {
		defer o.finish()
		tObs = time.Now()
	}
	if sup != nil {
		sup.startWatchdog(o, cfg.Checkpoint)
		defer sup.stop()
	}
	halted := make([]bool, n)
	// live tracks the number of non-halted vertices incrementally (via
	// per-chunk halt-transition deltas), replacing the sequential engine's
	// full rescan of the halt flags on every message-free superstep.
	live := n
	if resumeSnap == nil {
		// initTrap collects vertex-program panics from the InitialState
		// sweep; the lowest panicking vertex wins, which is deterministic
		// even though ForChunked's boundaries track the worker count (every
		// vertex below the lowest panic runs cleanly under any chunking).
		var initTrap struct {
			sync.Mutex
			trapped bool
			vertex  int64
			val     any
			stack   []byte
		}
		par.ForChunked(int(n), func(lo, hi int) {
			v := int64(lo)
			defer func() {
				if r := recover(); r != nil {
					stack := debug.Stack()
					initTrap.Lock()
					if !initTrap.trapped || v < initTrap.vertex {
						initTrap.trapped, initTrap.vertex, initTrap.val, initTrap.stack = true, v, r, stack
					}
					initTrap.Unlock()
				}
			}()
			for ; v < int64(hi); v++ {
				res.States[v] = cfg.Program.InitialState(g, v)
			}
		})
		if o != nil {
			o.phase(obsPhaseInit, -1, tObs)
		}
		if initTrap.trapped {
			return nil, &ProgramError{
				Vertex:    initTrap.vertex,
				Superstep: -1,
				Phase:     "init",
				Recovered: initTrap.val,
				Stack:     initTrap.stack,
			}
		}
	}

	// Inbox in CSR form: inboxOff[v]..inboxOff[v+1] indexes inboxVal.
	inboxOff := make([]int64, n+1)
	var inboxVal []int64
	var sendBuf []Message
	// bcasts holds the superstep's broadcast records (one per
	// SendToNeighbors call, not per edge); maybeExpand decides at each
	// boundary whether delivery consumes the records directly or expands
	// them into sendBuf.
	var bcasts []bcastRec

	// Sparse-activation worklist: the vertices worth inspecting this
	// superstep (message receivers plus non-halted vertices). stamp
	// deduplicates insertions per superstep.
	var candidates []int64
	var stamp []int64
	if cfg.SparseActivation {
		candidates = make([]int64, n)
		par.Iota(candidates)
		stamp = make([]int64, n)
		par.FillInt64(stamp, -1)
	}

	// master owns the run-persistent engine state: vertex states and the
	// run-level aggregators the per-chunk partials fold into.
	master := &engineState{
		graph:  g,
		costs:  costs,
		states: res.States,
		expand: cfg.ExpandBroadcasts,
	}
	scratch := &runScratch{sawUnicast: cfg.ExpandBroadcasts}

	if resumeSnap == nil && sup != nil && sup.maxRetries > 0 {
		// Capture the post-init boundary (Step = -1, in-memory only; never
		// written to disk) so a fault in superstep 0 has a snapshot to
		// roll back to.
		ck.record(-1, live, res, halted, nil, nil, master, ds, cfg.Recorder)
		sup.lastSnap.Store(ck.snap)
	}

	startStep := 0
	if resumeSnap != nil {
		// Restore the boundary after superstep resumeSnap.Step, then redo
		// the boundary's engine-local work: re-deliver the in-flight
		// messages into inboxes and (under sparse activation) rebuild the
		// worklist. Neither is re-charged — the restored profile already
		// contains the original charges — and both go through the same
		// code the original boundary used, so every downstream quantity is
		// bit-identical to the uninterrupted run's.
		live = restore(resumeSnap, res, halted, master, ds, cfg.Recorder)
		if len(progAux) > 0 {
			// Program-owned aux state (format v7). A pre-v7 checkpoint of an
			// aux-bearing program — or one taken under a different batch
			// shape — cannot resume: the levels recorded before the boundary
			// are gone, and silently restarting them would corrupt every
			// per-source distance.
			if len(resumeSnap.Aux) != len(progAux) {
				return nil, fmt.Errorf("core: checkpoint carries %d aux words, program expects %d (checkpoint predates format v7 or was taken under a different configuration)", len(resumeSnap.Aux), len(progAux))
			}
			copy(progAux, resumeSnap.Aux)
		}
		startStep = int(resumeSnap.Step) + 1
		sendBuf = make([]Message, len(resumeSnap.MsgDest))
		for i := range sendBuf {
			sendBuf[i] = Message{Dest: resumeSnap.MsgDest[i], Value: resumeSnap.MsgVal[i]}
		}
		bcasts = make([]bcastRec, len(resumeSnap.BcastSrc))
		logical := int64(len(sendBuf))
		for i := range bcasts {
			bcasts[i] = bcastRec{src: resumeSnap.BcastSrc[i], val: resumeSnap.BcastVal[i], seq: resumeSnap.BcastSeq[i]}
			logical += g.Degree(bcasts[i].src)
		}
		if len(sendBuf) > 0 {
			scratch.sawUnicast = true
		}
		sendBuf, bcasts = scratch.maybeExpand(sendBuf, bcasts, g, logical)
		// Re-deliver under the decision the original boundary recorded, so
		// the resumed inbox is built by the same path (DirAuto when the
		// direction layer is inactive — the legacy delivery heuristics).
		resumeDir := DirAuto
		if k := len(res.DirectionPerStep); ds != nil && k > 0 {
			resumeDir = res.DirectionPerStep[k-1]
		}
		delivered := scratch.deliver(sendBuf, bcasts, logical, g, n, cfg.Combiner, &inboxOff, &inboxVal, cfg.SparseActivation, resumeSnap.Step, resumeDir)
		if cfg.SparseActivation {
			// At any boundary the wake set equals the non-halted set (every
			// non-halted vertex re-ran this superstep and stayed awake), so
			// the worklist rebuild sees exactly what the original run's did.
			wake := make([]int64, 0, live)
			for v := int64(0); v < n; v++ {
				if !halted[v] {
					wake = append(wake, v)
				}
			}
			candidates = scratch.nextWorklist(candidates, int(resumeSnap.Step), wake, delivered, sendBuf, bcasts, g, logical, stamp, n)
		}
	}

	for step := startStep; ; step++ {
		if step >= maxSteps {
			be := &BudgetError{MaxSupersteps: maxSteps, Live: live}
			if k := len(res.ActivePerStep); k > 0 {
				be.LastActive = res.ActivePerStep[k-1]
				be.LastSent = res.MessagesPerStep[k-1]
			}
			if k := len(res.DeliveredPerStep); k > 0 {
				be.LastDelivered = res.DeliveredPerStep[k-1]
			}
			return nil, be
		}
		// The runtime decides which vertices run. The paper's XMT-C
		// implementation scans every vertex's queue head and halt flag — a
		// full parallel sweep over the vertex set — recorded as its own
		// region so its (abundant) parallelism is not conflated with the
		// compute loop's. Under SparseActivation only the worklist is
		// inspected.
		if sup != nil {
			sup.beginStep(step)
		}
		// The attempt loop: one iteration per execution of this superstep's
		// scan + compute sweep. Without a supervisor a trapped sweep exits
		// on the first iteration exactly as before; with retry enabled a
		// trapped attempt rolls back to the boundary snapshot and
		// re-executes (supervise.go). Everything below the loop consumes
		// only the successful attempt's chunk state.
		// The shadow keeps the parallel sweep closure capturing a
		// never-reassigned copy by value; capturing the loop variable
		// itself heap-allocates a cell every superstep.
		step := step
		var ph *trace.Phase
		var numChunks int
		var retried int64
		for {
			scanCount := n
			if cfg.SparseActivation {
				scanCount = int64(len(candidates))
			}
			scan := cfg.Recorder.StartPhase("bsp/scan", step)
			scan.AddTasks(scanCount, 0, costs.ScanLoadsPerVertex*scanCount, 0)
			scan.ObserveTask(costs.ScanLoadsPerVertex)

			ph = cfg.Recorder.StartPhase("bsp/superstep", step)

			// Compute sweep: worker-independent chunks, each with a private
			// context, merged in chunk index order below. Chunk boundaries are
			// a pure function of the schedule, graph, and active set (see
			// sweepBoundaries) — never of the worker count — so results and
			// profiles are identical at any host configuration.
			count := int(n)
			if cfg.SparseActivation {
				count = len(candidates)
			}
			bounds := scratch.sweepBoundaries(g.Offsets(), candidates, cfg.SparseActivation, cfg.Chunking, count)
			numChunks = len(bounds) - 1
			if numChunks < 0 {
				numChunks = 0
			}
			var visited []bool
			if ds != nil {
				visited = ds.visited
			}
			scratch.ensureChunks(numChunks, master, visited)
			sparse := cfg.SparseActivation
			prog := cfg.Program
			ib := &inboxView{val: inboxVal, off: inboxOff}
			if sparse {
				scratch.ensureSparseInbox(n)
				ib.sparse = true
				ib.stamp, ib.lo, ib.hi = scratch.msgStamp, scratch.msgLo, scratch.msgHi
				ib.st = int64(step) - 1 // what the previous superstep delivered
			}
			if o != nil {
				tObs = time.Now()
			}
			if par.Workers() == 1 {
				// Serial fast path: chunks run in index order anyway, so thread
				// one shared send buffer through them — appending in chunk order
				// is the concatenation the parallel path performs explicitly,
				// minus the copy. Counter and aggregator partials stay per-chunk
				// so their merge fold structure (hence the result) is identical
				// to the parallel path's.
				// The shared send buffer makes every broadcast record's seq global
				// already, so no offset fix-up is needed on this path.
				buf := sendBuf[:0]
				bb := bcasts[:0]
				for c := 0; c < numChunks; c++ {
					lo, hi := bounds[c], bounds[c+1]
					cs := scratch.chunks[c]
					cs.reset(step, master.prevAggregates)
					cs.eng.sendBuf = buf
					cs.eng.bcastBuf = bb
					cs.runRange(prog, lo, hi, step, ib, halted, sparse, candidates)
					buf = cs.eng.sendBuf
					bb = cs.eng.bcastBuf
					cs.eng.sendBuf = nil
					cs.eng.bcastBuf = nil
					if cs.trap != nil {
						// A trapped chunk is the lowest one (index order); later
						// chunks won't run, matching the parallel path's
						// lowest-chunk-wins fold in firstTrap.
						break
					}
				}
				sendBuf, bcasts = buf, bb
				if o != nil {
					// The serial sweep bypasses par entirely; its busy time is
					// the engine goroutine's, folded to worker 0.
					o.timer.Add(0, time.Since(tObs))
				}
			} else {
				presize := scratch.sawUnicast
				par.ForBoundaryChunks(bounds, func(c, lo, hi int) {
					cs := scratch.chunks[c]
					cs.reset(step, master.prevAggregates)
					// Pre-size the chunk's private send buffer from its degree
					// sum (exact for one-message-per-edge programs), avoiding
					// append-doubling in the hot sweep — but only once the run
					// has actually produced unicast messages: a pure-broadcast
					// run fills only the (tiny) record buffers and must not
					// allocate per-edge capacity it will never touch. The serial
					// path threads one shared buffer instead, so it needs no
					// hint.
					if presize {
						cs.presize(scratch.chunkSendHint(lo, hi))
					}
					cs.runRange(prog, lo, hi, step, ib, halted, sparse, candidates)
				})
				sendBuf = scratch.concatSends(sendBuf, numChunks)
				bcasts = scratch.concatBcasts(bcasts, numChunks)
			}
			if len(sendBuf) > 0 {
				scratch.sawUnicast = true
			}
			if o != nil {
				// Emitted before the trap check so a panicking superstep's
				// compute span still reaches the sink — the flight recorder's
				// ring must contain the failing step.
				o.phase(obsPhaseCompute, step, tObs)
				tObs = time.Now()
			}
			pe := scratch.firstTrap(numChunks, step)
			if pe == nil {
				break
			}
			if sup == nil || int(retried) >= sup.maxRetries || ck.snap == nil {
				pe.CheckpointPath = ck.emergency()
				if pe.CheckpointPath != "" {
					pe.FlightRecorderPath = o.flightDump(filepath.Dir(pe.CheckpointPath), pe.Error())
				}
				if retried > 0 {
					return nil, &RetryExhaustedError{
						Superstep:          step,
						Attempts:           int(retried) + 1,
						Cause:              pe,
						CheckpointPath:     pe.CheckpointPath,
						FlightRecorderPath: pe.FlightRecorderPath,
					}
				}
				return nil, pe
			}
			retried++
			sup.rollbackTo(ck.snap, halted, progAux, master, ds, scratch, cfg.Recorder)
		}
		if sup != nil && sup.maxRetries > 0 {
			sup.retries = append(sup.retries, retried)
		}

		// Deterministic merge of the chunk partials. sent is the logical
		// message count — one per edge for broadcasts, exactly what the
		// per-edge expansion produced before broadcasts became records — so
		// counters, charges, budgets, and termination are untouched by how
		// the traffic is physically represented.
		active, received, sent, unicast, extraIssue, extraLoads, extraStores, haltDelta := scratch.mergeCounters(numChunks)
		live += haltDelta
		if sent > maxMsgs {
			return nil, &MessageCapError{Superstep: step, Sent: sent, Cap: maxMsgs}
		}
		scratch.mergeAggregates(master, numChunks)

		// Direction decision for this superstep's delivery: fold the
		// chunks' newly-visited degree sums (single-owner writes merged in
		// chunk order, but a sum — worker-independent either way), then
		// compare the frontier's incident edges against the unvisited
		// incident edges. Everything here is a logical counter; the
		// decision is recorded before delivery so checkpoints persist it
		// even when this superstep is the run's last boundary.
		var dirMode DirectionMode
		var frontierEdges, unvisitedEdges int64
		if ds != nil {
			ds.visitedEdges += scratch.mergeVisited(numChunks)
			frontierEdges = sent - unicast
			unvisitedEdges = ds.totalEdges - ds.visitedEdges
			dirMode = ds.decide(frontierEdges, unicast)
			res.DirectionPerStep = append(res.DirectionPerStep, dirMode)
		}

		// Charge the compute phase: active dispatch, message receive,
		// message send, and chunked global buffer allocation.
		ph.AddTasks(active+sent,
			costs.ActiveIssuePerVertex*active+costs.RecvIssuePerMsg*received+costs.SendIssuePerMsg*sent+extraIssue,
			costs.ActiveLoadsPerVertex*active+costs.RecvLoadsPerMsg*received+costs.SendLoadsPerMsg*sent+extraLoads,
			costs.ActiveStoresPerVertex*active+costs.SendStoresPerMsg*sent+extraStores)
		ph.AddHot(trace.HotMsgCounter, costs.hotOps(sent))
		ph.ObserveTask(costs.ActiveIssuePerVertex + costs.ActiveLoadsPerVertex +
			costs.RecvIssuePerMsg + costs.RecvLoadsPerMsg)

		res.ActivePerStep = append(res.ActivePerStep, active)
		res.MessagesPerStep = append(res.MessagesPerStep, sent)
		res.Supersteps++

		// Snapshot aggregators for next superstep's PreviousAggregate
		// (Pregel visibility: values aggregated in superstep s are
		// readable in s+1). Aggregators accumulate over the whole run.
		if len(master.aggregates) > 0 {
			snap := make(map[string]int64, len(master.aggregates))
			for name, agg := range master.aggregates {
				snap[name] = agg.value
			}
			master.prevAggregates = snap
		}

		if o != nil {
			o.phase(obsPhaseTerminate, step, tObs)
		}
		if sent == 0 && live == 0 {
			if o != nil {
				st := obs.StepStats{
					Step: step, Active: active, Sent: sent, Received: received,
					ScratchBytes: scratch.scratchBytes(sendBuf, bcasts, inboxOff, inboxVal, candidates, stamp),
				}
				if ds != nil {
					st.Direction = dirMode.String()
					st.FrontierEdges = frontierEdges
					st.UnvisitedEdges = unvisitedEdges
				}
				if sup != nil {
					st.Retries = retried
					st.Stalled = sup.stalledAt(step)
				}
				if len(laneSrc) > 0 {
					st.Lanes = laneCount(sendBuf, bcasts)
				}
				o.step(st)
			}
			break
		}

		// Deliver: normalize the traffic (keep broadcast records, or expand
		// them into the send buffer — maybeExpand), then route it into
		// per-vertex inboxes, applying the combiner if configured. physSent
		// is what was physically materialized: per-edge messages plus one
		// record per kept broadcast — the engine-side traffic the logical
		// counter deliberately does not show.
		if o != nil {
			tObs = time.Now()
		}
		sendBuf, bcasts = scratch.maybeExpand(sendBuf, bcasts, g, sent)
		physSent := int64(len(sendBuf)) + int64(len(bcasts))
		delivered := scratch.deliver(sendBuf, bcasts, sent, g, n, cfg.Combiner, &inboxOff, &inboxVal, cfg.SparseActivation, int64(step), dirMode)
		res.DeliveredPerStep = append(res.DeliveredPerStep, delivered)
		ph.AddTasks(0, 0, costs.DeliverLoadsPerMsg*sent, costs.DeliverStoresPerMsg*sent)
		if o != nil {
			o.phase(obsPhaseDeliver, step, tObs)
		}

		if cfg.SparseActivation {
			// Next worklist: message receivers plus vertices that stayed
			// awake, deduplicated and in ascending order for deterministic
			// execution.
			if o != nil {
				tObs = time.Now()
			}
			wake := scratch.mergeWake(numChunks)
			candidates = scratch.nextWorklist(candidates, step, wake, delivered, sendBuf, bcasts, g, sent, stamp, n)
			if o != nil {
				o.phase(obsPhaseWorklist, step, tObs)
			}
		}
		if o != nil {
			st := obs.StepStats{
				Step: step, Active: active, Sent: sent, SentPhysical: physSent, Delivered: delivered, Received: received,
				ScratchBytes: scratch.scratchBytes(sendBuf, bcasts, inboxOff, inboxVal, candidates, stamp),
			}
			if ds != nil {
				st.Direction = dirMode.String()
				st.FrontierEdges = frontierEdges
				st.UnvisitedEdges = unvisitedEdges
			}
			if sup != nil {
				st.Retries = retried
				st.Stalled = sup.stalledAt(step)
			}
			if len(laneSrc) > 0 {
				st.Lanes = laneCount(sendBuf, bcasts)
			}
			o.step(st)
		}

		// Superstep boundary: snapshot/write checkpoints and honor stop
		// requests (checkpoint.go). The terminal superstep exits above, so
		// completed runs never checkpoint.
		if ck != nil {
			if o != nil {
				tObs = time.Now()
			}
			if err := ck.atBoundary(step, live, res, halted, sendBuf, bcasts, master, ds, cfg.Recorder); err != nil {
				return nil, err
			}
			if o != nil && ck.policy != nil {
				o.phase(obsPhaseCheckpoint, step, tObs)
			}
		}
		// A watchdog stall latched during this superstep surfaces after the
		// boundary work above, so the periodic checkpoint (if due) is still
		// written; a stalled *terminal* superstep exits through the normal
		// completion path instead — the run finished, deadline or not.
		if sup != nil {
			if err := sup.stallErr(); err != nil {
				return nil, err
			}
		}
	}
	if sup != nil && sup.maxRetries > 0 {
		res.RetriesPerStep = sup.retries
	}
	for name, agg := range master.aggregates {
		res.Aggregates[name] = agg.value
	}
	return res, nil
}
