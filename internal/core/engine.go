// Package core implements the paper's primary contribution: a bulk
// synchronous parallel (BSP), vertex-centric graph computation engine in
// the style of Google's Pregel, built over the same read-only CSR graph the
// shared-memory GraphCT kernels use — exactly the construction the paper
// evaluates on the Cray XMT.
//
// A computation is a sequence of supersteps. In each superstep every active
// vertex (1) receives the messages sent to it in the previous superstep,
// (2) updates its local state, and (3) sends messages that will be received
// in the next superstep. Messages never arrive within a superstep, which
// makes the model deadlock-free and forces algorithms to work on stale
// state — the algorithmic property behind every performance difference the
// paper measures. A vertex votes to halt when it has nothing further to do
// and is reactivated only by incoming messages; the computation terminates
// when no vertex is active and no messages are in flight.
//
// The engine executes for real (its outputs are checked against the
// GraphCT kernels and sequential references in tests) and records a work
// profile for the machine model, charging the costs of the paper's XMT
// implementation: a full vertex scan per superstep, per-message queue
// writes, and chunked fetch-and-add allocation from a single global buffer
// cursor (trace.HotMsgCounter).
package core

import (
	"fmt"
	"sort"

	"graphxmt/internal/graph"
	"graphxmt/internal/trace"
)

// Message is one in-flight message: a destination vertex and an int64
// payload. The paper's three algorithms all exchange vertex IDs or
// distances, so payloads are plain int64s.
type Message struct {
	Dest  int64
	Value int64
}

// Program is a vertex program. Compute is called once per active vertex
// per superstep with the vertex's incoming messages.
type Program interface {
	// InitialState returns vertex v's state before superstep 0.
	InitialState(g *graph.Graph, v int64) int64
	// Compute runs one vertex for one superstep.
	Compute(v *VertexContext)
}

// Config configures a BSP run.
type Config struct {
	// Graph is the input graph (required).
	Graph *graph.Graph
	// Program is the vertex program (required).
	Program Program
	// MaxSupersteps bounds the run; 0 selects 1000. Exceeding the bound
	// returns an error rather than silently stopping.
	MaxSupersteps int
	// Combiner, when non-nil, merges messages addressed to the same vertex
	// at the superstep boundary (Pregel's combiner optimization). It must
	// be commutative and associative.
	Combiner func(a, b int64) int64
	// Recorder receives the work profile; nil disables recording.
	Recorder *trace.Recorder
	// Costs is the engine cost schedule; the zero value selects
	// DefaultCosts.
	Costs *CostSchedule
	// MaxMessagesPerSuperstep bounds send-buffer growth; 0 selects 1<<28.
	// Algorithms that exceed it (BSP triangle counting at scale) must use
	// a streaming evaluator instead; the engine returns an error.
	MaxMessagesPerSuperstep int64
	// SparseActivation switches the runtime from the paper's full
	// per-superstep vertex scan to an active-worklist schedule: only
	// vertices that received messages or stayed awake are inspected. The
	// computation's results are identical; only the charged (and host)
	// scan work changes. This is the ablation for the paper's observation
	// that "the overhead of the early and late iterations is two orders of
	// magnitude larger" in BSP — with sparse activation that overhead
	// disappears (see experiments.AblationActivation).
	SparseActivation bool
}

// Result is the outcome of a BSP run.
type Result struct {
	// States holds every vertex's final state.
	States []int64
	// Supersteps is the number of supersteps executed.
	Supersteps int
	// ActivePerStep holds the number of vertices that ran Compute in each
	// superstep.
	ActivePerStep []int64
	// MessagesPerStep holds the number of messages sent in each superstep
	// (before combining).
	MessagesPerStep []int64
	// DeliveredPerStep holds the number of messages delivered into
	// inboxes for each superstep (after combining); index s is what
	// superstep s consumed.
	DeliveredPerStep []int64
	// Aggregates holds the final value of every named aggregator.
	Aggregates map[string]int64
}

// Run executes the BSP computation to termination.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if cfg.Program == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps == 0 {
		maxSteps = 1000
	}
	maxMsgs := cfg.MaxMessagesPerSuperstep
	if maxMsgs == 0 {
		maxMsgs = 1 << 28
	}
	costs := DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}

	g := cfg.Graph
	n := g.NumVertices()
	res := &Result{
		States:     make([]int64, n),
		Aggregates: map[string]int64{},
	}
	for v := int64(0); v < n; v++ {
		res.States[v] = cfg.Program.InitialState(g, v)
	}

	halted := make([]bool, n)

	// Inbox in CSR form: inboxOff[v]..inboxOff[v+1] indexes inboxVal.
	inboxOff := make([]int64, n+1)
	var inboxVal []int64
	var sendBuf []Message

	// Sparse-activation worklist: the vertices worth inspecting this
	// superstep (message receivers plus non-halted vertices). stamp
	// deduplicates insertions per superstep.
	var candidates []int64
	var stamp []int64
	if cfg.SparseActivation {
		candidates = make([]int64, n)
		for v := int64(0); v < n; v++ {
			candidates[v] = v
		}
		stamp = make([]int64, n)
		for i := range stamp {
			stamp[i] = -1
		}
	}

	ctx := &VertexContext{engine: &engineState{
		graph:  g,
		costs:  costs,
		states: res.States,
	}}

	for step := 0; ; step++ {
		if step >= maxSteps {
			return nil, fmt.Errorf("core: no convergence after %d supersteps", maxSteps)
		}
		// The runtime decides which vertices run. The paper's XMT-C
		// implementation scans every vertex's queue head and halt flag — a
		// full parallel sweep over the vertex set — recorded as its own
		// region so its (abundant) parallelism is not conflated with the
		// compute loop's. Under SparseActivation only the worklist is
		// inspected.
		scanCount := n
		if cfg.SparseActivation {
			scanCount = int64(len(candidates))
		}
		scan := cfg.Recorder.StartPhase("bsp/scan", step)
		scan.AddTasks(scanCount, 0, costs.ScanLoadsPerVertex*scanCount, 0)
		scan.ObserveTask(costs.ScanLoadsPerVertex)

		ph := cfg.Recorder.StartPhase("bsp/superstep", step)

		ctx.engine.superstep = step
		ctx.engine.sendBuf = sendBuf[:0]
		ctx.engine.sent = 0
		ctx.engine.extraIssue, ctx.engine.extraLoads, ctx.engine.extraStores = 0, 0, 0

		var active, received int64
		var wake []int64 // sparse mode: vertices that did not halt
		runVertex := func(v int64) {
			lo, hi := inboxOff[v], inboxOff[v+1]
			hasMsgs := hi > lo
			if step > 0 && !hasMsgs && halted[v] {
				return
			}
			active++
			received += hi - lo
			ctx.id = v
			ctx.msgs = inboxVal[lo:hi]
			ctx.halt = false
			cfg.Program.Compute(ctx)
			halted[v] = ctx.halt
			if cfg.SparseActivation && !ctx.halt {
				wake = append(wake, v)
			}
		}
		if cfg.SparseActivation {
			for _, v := range candidates {
				runVertex(v)
			}
		} else {
			for v := int64(0); v < n; v++ {
				runVertex(v)
			}
		}
		sendBuf = ctx.engine.sendBuf
		sent := int64(len(sendBuf))
		if sent > maxMsgs {
			return nil, fmt.Errorf("core: superstep %d sent %d messages, exceeding the %d cap; use a streaming evaluator", step, sent, maxMsgs)
		}

		// Charge the compute phase: active dispatch, message receive,
		// message send, and chunked global buffer allocation.
		ph.AddTasks(active+sent,
			costs.ActiveIssuePerVertex*active+costs.RecvIssuePerMsg*received+costs.SendIssuePerMsg*sent+ctx.engine.extraIssue,
			costs.ActiveLoadsPerVertex*active+costs.RecvLoadsPerMsg*received+costs.SendLoadsPerMsg*sent+ctx.engine.extraLoads,
			costs.ActiveStoresPerVertex*active+costs.SendStoresPerMsg*sent+ctx.engine.extraStores)
		ph.AddHot(trace.HotMsgCounter, costs.hotOps(sent))
		ph.ObserveTask(costs.ActiveIssuePerVertex + costs.ActiveLoadsPerVertex +
			costs.RecvIssuePerMsg + costs.RecvLoadsPerMsg)

		res.ActivePerStep = append(res.ActivePerStep, active)
		res.MessagesPerStep = append(res.MessagesPerStep, sent)
		res.Supersteps++

		// Snapshot aggregators for next superstep's PreviousAggregate
		// (Pregel visibility: values aggregated in superstep s are
		// readable in s+1). Aggregators accumulate over the whole run.
		if len(ctx.engine.aggregates) > 0 {
			snap := make(map[string]int64, len(ctx.engine.aggregates))
			for name, agg := range ctx.engine.aggregates {
				snap[name] = agg.value
			}
			ctx.engine.prevAggregates = snap
		}

		if sent == 0 {
			allHalted := true
			for v := int64(0); v < n; v++ {
				if !halted[v] {
					allHalted = false
					break
				}
			}
			if allHalted {
				break
			}
		}

		// Deliver: counting sort the send buffer into per-vertex inboxes,
		// applying the combiner if configured.
		delivered := deliver(sendBuf, n, cfg.Combiner, &inboxOff, &inboxVal)
		res.DeliveredPerStep = append(res.DeliveredPerStep, delivered)
		ph.AddTasks(0, 0, costs.DeliverLoadsPerMsg*sent, costs.DeliverStoresPerMsg*sent)

		if cfg.SparseActivation {
			// Next worklist: message receivers plus vertices that stayed
			// awake, deduplicated and sorted for deterministic execution
			// order.
			candidates = candidates[:0]
			for _, m := range sendBuf {
				if stamp[m.Dest] != int64(step) {
					stamp[m.Dest] = int64(step)
					candidates = append(candidates, m.Dest)
				}
			}
			for _, v := range wake {
				if stamp[v] != int64(step) {
					stamp[v] = int64(step)
					candidates = append(candidates, v)
				}
			}
			sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
		}
	}
	for name, agg := range ctx.engine.aggregates {
		res.Aggregates[name] = agg.value
	}
	return res, nil
}

// deliver routes sendBuf into CSR-form inboxes (inboxOff, inboxVal),
// combining same-destination messages when combine is non-nil. It returns
// the number of delivered (post-combining) messages.
func deliver(sendBuf []Message, n int64, combine func(a, b int64) int64, inboxOff *[]int64, inboxVal *[]int64) int64 {
	off := *inboxOff
	for i := range off {
		off[i] = 0
	}
	if combine == nil {
		for _, m := range sendBuf {
			off[m.Dest+1]++
		}
		for v := int64(0); v < n; v++ {
			off[v+1] += off[v]
		}
		val := *inboxVal
		if int64(cap(val)) < int64(len(sendBuf)) {
			val = make([]int64, len(sendBuf))
		} else {
			val = val[:len(sendBuf)]
		}
		next := make([]int64, n)
		copy(next, off[:n])
		for _, m := range sendBuf {
			val[next[m.Dest]] = m.Value
			next[m.Dest]++
		}
		*inboxVal = val
		return int64(len(sendBuf))
	}

	// Combining path: one slot per destination that received anything.
	has := make([]bool, n)
	acc := make([]int64, n)
	var delivered int64
	for _, m := range sendBuf {
		if has[m.Dest] {
			acc[m.Dest] = combine(acc[m.Dest], m.Value)
		} else {
			has[m.Dest] = true
			acc[m.Dest] = m.Value
			delivered++
		}
	}
	val := *inboxVal
	if int64(cap(val)) < delivered {
		val = make([]int64, delivered)
	} else {
		val = val[:delivered]
	}
	var pos int64
	for v := int64(0); v < n; v++ {
		off[v] = pos
		if has[v] {
			val[pos] = acc[v]
			pos++
		}
	}
	off[n] = pos
	*inboxVal = val
	return delivered
}
