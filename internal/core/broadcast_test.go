package core_test

// The broadcast message path's contract: keeping SendToNeighbors traffic as
// O(frontier) broadcast records instead of O(edges) expanded messages is
// invisible everywhere except the physical-traffic counter. Result, trace
// profile, and logical message counts are bit-identical to the eager
// per-edge expansion (Config.ExpandBroadcasts) at any worker count, across
// dense and sparse delivery, with and without a combiner, for mixed
// unicast+broadcast supersteps, and through checkpoint/resume.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"graphxmt/internal/bspalg"
	"graphxmt/internal/ckpt"
	"graphxmt/internal/core"
	"graphxmt/internal/faultinject"
	"graphxmt/internal/gen"
	"graphxmt/internal/graph"
	"graphxmt/internal/obs"
)

// TestBroadcastMatchesExpandedPath: the record path vs the expanded path,
// elementwise. The reference is a 1-worker run with ExpandBroadcasts (the
// legacy eager expansion); the record path must match it bit-for-bit at 1,
// 3, and 8 workers, and the expanded path must stay worker-deterministic
// too. detGraph's dense supersteps carry ~2x16K logical messages, above
// the expansion cutoff, so records genuinely reach delivery; the shrinking
// tail supersteps fall below it, so one run exercises both treatments.
func TestBroadcastMatchesExpandedPath(t *testing.T) {
	g := detGraph(t)
	cases := []struct {
		name string
		mk   func() core.Config
	}{
		{"bfs/dense", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}}
		}},
		{"bfs/sparse", func() core.Config {
			return core.Config{Program: bspalg.BFSProgram{Source: 0}, SparseActivation: true}
		}},
		{"cc/dense", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}}
		}},
		{"cc/combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
		{"cc/sparse-combiner", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min, SparseActivation: true}
		}},
		{"labelprop/dense", func() core.Config {
			return core.Config{Program: bspalg.NewLPProgram(g, 30)}
		}},
		{"pagerank/combiner", func() core.Config {
			return core.Config{
				Program:  bspalg.PageRankProgram{DampingMilli: 850, Rounds: 15},
				Combiner: core.Sum,
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkExpand := func() core.Config {
				cfg := tc.mk()
				cfg.ExpandBroadcasts = true
				return cfg
			}
			baseRes, basePh := runDet(t, g, 1, mkExpand)
			for _, w := range []int{1, 3, 8} {
				res, ph := runDet(t, g, w, tc.mk)
				if !reflect.DeepEqual(baseRes, res) {
					t.Fatalf("w=%d: broadcast-path Result differs from expanded reference\n  supersteps %d vs %d\n  msgs %v vs %v",
						w, baseRes.Supersteps, res.Supersteps,
						baseRes.MessagesPerStep, res.MessagesPerStep)
				}
				comparePhases(t, basePh, ph)
			}
			for _, w := range []int{3, 8} {
				res, ph := runDet(t, g, w, mkExpand)
				if !reflect.DeepEqual(baseRes, res) {
					t.Fatalf("w=%d: expanded-path Result not worker-deterministic", w)
				}
				comparePhases(t, basePh, ph)
			}
		})
	}
}

// orderFold mixes unicasts and broadcasts in one Compute call and folds its
// inbox through a non-commutative hash, so any deviation in message ORDER —
// not just content — changes the final states. This pins expandTraffic's
// seq-interleaved reconstruction: a broadcast record must land its per-edge
// messages exactly where the legacy path would have appended them, between
// the unicasts sent before and after it.
type orderFold struct {
	n      int64
	rounds int
}

func (p orderFold) InitialState(_ *graph.Graph, v int64) int64 { return v + 1 }

func (p orderFold) Compute(v *core.VertexContext) {
	st := v.State()
	for _, m := range v.Messages() {
		st = st*1000003 + m
	}
	v.SetState(st)
	if v.Superstep() < p.rounds {
		if v.ID()%3 == 0 {
			v.Send((v.ID()+7)%p.n, v.ID())
		}
		v.SendToNeighbors(st)
		if v.ID()%5 == 0 {
			v.Send((v.ID()+3)%p.n, -st)
		}
	}
	v.VoteToHalt()
}

func TestBroadcastMixedSendOrder(t *testing.T) {
	g := detGraph(t)
	for _, sparse := range []bool{false, true} {
		t.Run(fmt.Sprintf("sparse=%v", sparse), func(t *testing.T) {
			mk := func(expand bool) func() core.Config {
				return func() core.Config {
					return core.Config{
						Program:          orderFold{n: g.NumVertices(), rounds: 4},
						SparseActivation: sparse,
						ExpandBroadcasts: expand,
					}
				}
			}
			baseRes, basePh := runDet(t, g, 1, mk(true))
			for _, w := range []int{1, 3, 8} {
				res, ph := runDet(t, g, w, mk(false))
				if !reflect.DeepEqual(baseRes, res) {
					t.Fatalf("w=%d: mixed-order Result differs from expanded reference", w)
				}
				comparePhases(t, basePh, ph)
			}
		})
	}
}

// TestBroadcastCheckpointRoundTrip: a dense flood killed at a boundary
// whose in-flight traffic is pure broadcast writes a v3 checkpoint carrying
// records (not expanded messages), and resuming from it — under either
// delivery treatment, since ExpandBroadcasts is not fingerprinted — is
// bit-identical to the uninterrupted run.
func TestBroadcastCheckpointRoundTrip(t *testing.T) {
	g := detGraph(t)
	mk := func() core.Config {
		return core.Config{Program: bspalg.CCProgram{}}
	}
	base, basePh, err := runRec(g, 3, mk())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= base.Supersteps-2; k++ {
		dir := t.TempDir()
		plan := &faultinject.Plan{KillAt: map[int64]bool{int64(k): true}}
		cfg := mk()
		cfg.Checkpoint = &ckpt.Policy{Dir: dir, Hooks: plan.Hooks()}
		_, _, err := runRec(g, 3, cfg)
		var ie *core.InterruptedError
		if !errors.As(err, &ie) {
			t.Fatalf("kill@%d: want InterruptedError, got %v", k, err)
		}
		snap, err := ckpt.Load(ie.CheckpointPath)
		if err != nil {
			t.Fatalf("kill@%d: loading checkpoint: %v", k, err)
		}
		if k == 0 {
			// The step-0 boundary of a dense flood is all-broadcast and far
			// above the expansion cutoff: the snapshot must hold records,
			// zero expanded messages.
			if len(snap.BcastSrc) == 0 || len(snap.MsgDest) != 0 {
				t.Fatalf("kill@0: snapshot has %d broadcast records and %d unicasts; want records only",
					len(snap.BcastSrc), len(snap.MsgDest))
			}
		}
		if int64(len(snap.BcastSrc)) > g.NumVertices() {
			t.Fatalf("kill@%d: %d broadcast records exceeds the %d-vertex frontier bound",
				k, len(snap.BcastSrc), g.NumVertices())
		}
		for _, expand := range []bool{false, true} {
			cfg = mk()
			cfg.ExpandBroadcasts = expand
			cfg.Checkpoint = &ckpt.Policy{Dir: dir}
			cfg.Resume = ie.CheckpointPath
			res, ph, err := runRec(g, 3, cfg)
			if err != nil {
				t.Fatalf("resume from kill@%d (expand=%v): %v", k, expand, err)
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("kill@%d expand=%v: resumed Result differs from uninterrupted run", k, expand)
			}
			comparePhases(t, basePh, ph)
		}
	}
}

// stepCapture is an obs sink retaining per-superstep counters only.
type stepCapture struct {
	steps []obs.StepStats
}

func (c *stepCapture) RunStart(obs.RunInfo)  {}
func (c *stepCapture) Span(obs.Span)         {}
func (c *stepCapture) Step(st obs.StepStats) { c.steps = append(c.steps, st) }
func (c *stepCapture) Mem(obs.MemSample)     {}
func (c *stepCapture) RunEnd(time.Duration)  {}

// TestBroadcastPhysicalCounter: the logical Sent counter (the paper's
// per-edge message count, what the cost model charges) is identical under
// both treatments, while SentPhysical collapses to the frontier size on
// record-path supersteps and equals Sent when expanded.
func TestBroadcastPhysicalCounter(t *testing.T) {
	g := detGraph(t)
	run := func(expand bool) []obs.StepStats {
		sink := &stepCapture{}
		cfg := core.Config{
			Program:          bspalg.CCProgram{},
			ExpandBroadcasts: expand,
			Obs:              sink,
		}
		cfg.Graph = g
		if _, err := core.Run(cfg); err != nil {
			t.Fatal(err)
		}
		return sink.steps
	}
	rec, exp := run(false), run(true)
	if len(rec) != len(exp) {
		t.Fatalf("superstep counts differ: %d vs %d", len(rec), len(exp))
	}
	sawCollapse := false
	for i := range rec {
		if rec[i].Sent != exp[i].Sent {
			t.Fatalf("step %d: logical Sent differs between treatments: %d vs %d",
				i, rec[i].Sent, exp[i].Sent)
		}
		if exp[i].SentPhysical != exp[i].Sent {
			t.Fatalf("step %d: expanded path SentPhysical %d != Sent %d",
				i, exp[i].SentPhysical, exp[i].Sent)
		}
		if rec[i].SentPhysical > rec[i].Sent {
			t.Fatalf("step %d: SentPhysical %d exceeds logical Sent %d",
				i, rec[i].SentPhysical, rec[i].Sent)
		}
		if rec[i].SentPhysical < rec[i].Sent {
			sawCollapse = true
			if rec[i].SentPhysical > g.NumVertices() {
				t.Fatalf("step %d: record-path SentPhysical %d exceeds the vertex count %d",
					i, rec[i].SentPhysical, g.NumVertices())
			}
		}
	}
	if !sawCollapse {
		t.Fatal("no superstep took the record path; broadcast traffic never collapsed")
	}
	// Result-level counters are logical too and must match the paper count:
	// superstep 0 of a dense CC flood sends one message per directed edge.
	if rec[0].Sent != int64(len(g.Adjacency())) {
		t.Fatalf("step 0 logical Sent = %d, want one per edge = %d",
			rec[0].Sent, len(g.Adjacency()))
	}
}

// TestBroadcastStarPaths drives the two specialized dense deliveries on the
// degree-skew extreme: the star's non-combined flood scatters records
// through the hub's quarter-length adjacency, and the combined flood takes
// the pull-side fold. Both must match the expanded reference exactly.
func TestBroadcastStarPaths(t *testing.T) {
	star := gen.Star(1 << 15)
	for _, tc := range []struct {
		name string
		mk   func() core.Config
	}{
		{"scatter", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}}
		}},
		{"pull-combine", func() core.Config {
			return core.Config{Program: bspalg.CCProgram{}, Combiner: core.Min}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mkExpand := func() core.Config {
				cfg := tc.mk()
				cfg.ExpandBroadcasts = true
				return cfg
			}
			baseRes, basePh := runDet(t, star, 1, mkExpand)
			for _, w := range []int{1, 3, 8} {
				res, ph := runDet(t, star, w, tc.mk)
				if !reflect.DeepEqual(baseRes, res) {
					t.Fatalf("w=%d: star Result differs from expanded reference", w)
				}
				comparePhases(t, basePh, ph)
			}
		})
	}
}
